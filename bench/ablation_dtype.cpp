// Dtype ablation: float32 vs float64 temporal vectorization at matched
// footprint (fig4a-style size sweep, Gstencils/s).
//
// The paper's speedup scales with the vector length vl (§3, Table 1); on
// the same hardware float doubles the lanes per register (8 per AVX2
// register, 16 per AVX-512), which is exactly the regime the follow-up
// papers report the largest wins in.  Two comparisons per size:
//
//   f32        — same grid POINTS as the f64 row (half the bytes): pure
//                lane-count effect;
//   f32@2x     — same grid BYTES as the f64 row (twice the points): the
//                matched-footprint column, what a memory-budgeted caller
//                actually gets from switching precision.
//
// Both run through the Solver facade on the serial temporal path, so the
// measured path is the planned (backend, vl, stride) configuration.
#include <string>

#include "bench_util/bench.hpp"
#include "solver/solver.hpp"
#include "stencil/coefficients.hpp"

namespace {

using namespace tvs;

template <class T>
double rate_1d(int nx, long steps) {
  grid::Grid1D<T> u(nx);
  for (int x = 0; x <= nx + 1; ++x)
    u.at(x) = T{1} + T(0.001) * static_cast<T>(x % 97);
  solver::StencilProblem p =
      solver::problem_1d(solver::Family::kJacobi1D3, nx, steps);
  if constexpr (std::is_same_v<T, float>) p.dtype = dispatch::DType::kF32;
  const solver::Solver s(p);
  const stencil::C1D3T<T> c = stencil::heat1d<T>(0.25);
  const double pts = static_cast<double>(nx) * static_cast<double>(steps);
  return bench::measure_gstencils(pts, [&] { s.run(c, u); });
}

template <class T>
double rate_2d(int nx, int ny, long steps) {
  grid::Grid2D<T> u(nx, ny);
  for (int x = 0; x <= nx + 1; ++x)
    for (int y = 0; y <= ny + 1; ++y)
      u.at(x, y) = T{1} + T(0.001) * static_cast<T>((x + y) % 97);
  solver::StencilProblem p =
      solver::problem_2d(solver::Family::kJacobi2D5, nx, ny, steps);
  if constexpr (std::is_same_v<T, float>) p.dtype = dispatch::DType::kF32;
  const solver::Solver s(p);
  const stencil::C2D5T<T> c = stencil::heat2d<T>(0.2);
  const double pts =
      static_cast<double>(nx) * ny * static_cast<double>(steps);
  return bench::measure_gstencils(pts, [&] { s.run(c, u); });
}

template <class T>
double rate_3d(int n, long steps) {
  grid::Grid3D<T> u(n, n, n);
  for (int x = 0; x <= n + 1; ++x)
    for (int y = 0; y <= n + 1; ++y)
      for (int z = 0; z <= n + 1; ++z)
        u.at(x, y, z) = T{1} + T(0.001) * static_cast<T>((x + y + z) % 97);
  solver::StencilProblem p =
      solver::problem_3d(solver::Family::kJacobi3D7, n, n, n, steps);
  if constexpr (std::is_same_v<T, float>) p.dtype = dispatch::DType::kF32;
  const solver::Solver s(p);
  const stencil::C3D7T<T> c = stencil::heat3d<T>(0.1);
  const double pts =
      static_cast<double>(n) * n * n * static_cast<double>(steps);
  return bench::measure_gstencils(pts, [&] { s.run(c, u); });
}

std::string ratio(double num, double den) {
  return den > 0 ? bench::fmt(num / den) + "x" : "-";
}

}  // namespace

int main() {
  namespace b = tvs::bench;

  b::print_title("Ablation  float32 vs float64 temporal engines (Gstencils/s)");

  {
    b::print_header({"heat1d=2^x", "f64", "f32", "f32@2x", "f32/f64",
                     "matched"});
    const int lo = 10, hi = b::full_mode() ? 23 : 19;
    for (int e = lo; e <= hi; ++e) {
      const int nx = 1 << e;
      const long steps =
          std::max<long>(8, (b::full_mode() ? 1L << 25 : 1L << 22) / nx);
      const double r64 = rate_1d<double>(nx, steps);
      const double r32 = rate_1d<float>(nx, steps);
      const double r32m = rate_1d<float>(2 * nx, std::max<long>(steps / 2, 4));
      b::print_row({"2^" + std::to_string(e), b::fmt(r64), b::fmt(r32),
                    b::fmt(r32m), ratio(r32, r64), ratio(r32m, r64)});
    }
  }
  {
    b::print_header({"heat2d=NxN", "f64", "f32", "f32@2x", "f32/f64",
                     "matched"});
    for (const int n : {128, 256, b::full_mode() ? 1024 : 512}) {
      const long steps = std::max<long>(
          8, (b::full_mode() ? 1L << 24 : 1L << 21) /
                 (static_cast<long>(n) * n));
      const double r64 = rate_2d<double>(n, n, steps);
      const double r32 = rate_2d<float>(n, n, steps);
      // Matched bytes exactly: twice the rows at the same row length (a
      // 2n x n float grid occupies the n x n double grid's bytes without
      // changing the unit-stride extent).
      const double r32m = rate_2d<float>(2 * n, n, steps);
      b::print_row({std::to_string(n), b::fmt(r64), b::fmt(r32), b::fmt(r32m),
                    ratio(r32, r64), ratio(r32m, r64)});
    }
  }
  {
    b::print_header({"heat3d=N^3", "f64", "f32", "f32@2x", "f32/f64",
                     "matched"});
    for (const int n : {32, 64, b::full_mode() ? 256 : 96}) {
      const long steps = std::max<long>(
          8, (b::full_mode() ? 1L << 24 : 1L << 21) /
                 (static_cast<long>(n) * n * n));
      const double r64 = rate_3d<double>(n, steps);
      const double r32 = rate_3d<float>(n, steps);
      const double r32m = rate_3d<float>(n * 5 / 4, steps);
      b::print_row({std::to_string(n), b::fmt(r64), b::fmt(r32), b::fmt(r32m),
                    ratio(r32, r64), ratio(r32m, r64)});
    }
  }
  return 0;
}
