// Figure 5b: GS-1D parallel scaling; parallelogram wavefront, Table 1:
// 2048 x 64 blocking.  `our` and `scalar` share the identical tiling.
#include "bench_util/bench.hpp"
#include "common.hpp"
#include "solver/solver.hpp"
#include "tiling/parallelogram.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const int nx = b::full_mode() ? 16000000 : (1 << 21);
  const long sweeps = b::full_mode() ? 768 : 512;
  const stencil::C1D3 c = stencil::heat1d(0.25);
  const double pts = static_cast<double>(nx) * static_cast<double>(sweeps);

  grid::Grid1D<double> u(nx);
  for (int x = 0; x <= nx + 1; ++x) u.at(x) = 1.0 + 0.001 * (x % 97);

  // "our" through the Solver facade, pinned to Table 1's blocking.
  const solver::StencilProblem prob =
      solver::problem_1d(solver::Family::kGs1D3, nx, sweeps);
  solver::ExecutionPlan plan = solver::heuristic_plan(prob);
  plan.path = solver::Path::kTiledParallel;
  plan.tile_w = 2048;
  plan.tile_h = b::full_mode() ? 64 : 16;
  const solver::Solver solve(prob, plan);

  tiling::Parallelogram1DOptions sc;  // identical tiling, scalar tiles
  sc.width = plan.tile_w;
  sc.height = plan.tile_h;
  sc.use_vector = false;

  benchx::par_figure(
      "Fig 5b  GS-1D parallel, parallelogram 2048x64 (Gstencils/s)",
      {{"our",
        [&](int) {
          return b::measure_gstencils(pts, [&] { solve.run(c, u); });
        }},
       {"scalar", [&](int) {
          return b::measure_gstencils(pts, [&] {
            tiling::parallelogram_gs1d3_run(c, u, sweeps, sc);
          });
        }}});
  return 0;
}
