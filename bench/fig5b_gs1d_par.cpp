// Figure 5b: GS-1D parallel scaling; parallelogram wavefront, Table 1:
// 2048 x 64 blocking.  `our` and `scalar` share the identical tiling.
#include "bench_util/bench.hpp"
#include "common.hpp"
#include "tiling/parallelogram.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const int nx = b::full_mode() ? 16000000 : (1 << 21);
  const long sweeps = b::full_mode() ? 768 : 512;
  const stencil::C1D3 c = stencil::heat1d(0.25);
  const double pts = static_cast<double>(nx) * static_cast<double>(sweeps);

  grid::Grid1D<double> u(nx);
  for (int x = 0; x <= nx + 1; ++x) u.at(x) = 1.0 + 0.001 * (x % 97);

  tiling::Parallelogram1DOptions our;  // Table 1
  our.width = 2048;
  our.height = b::full_mode() ? 64 : 16;
  tiling::Parallelogram1DOptions sc = our;
  sc.use_vector = false;

  benchx::par_figure(
      "Fig 5b  GS-1D parallel, parallelogram 2048x64 (Gstencils/s)",
      {{"our",
        [&](int) {
          return b::measure_gstencils(pts, [&] {
            tiling::parallelogram_gs1d3_run(c, u, sweeps, our);
          });
        }},
       {"scalar", [&](int) {
          return b::measure_gstencils(pts, [&] {
            tiling::parallelogram_gs1d3_run(c, u, sweeps, sc);
          });
        }}});
  return 0;
}
