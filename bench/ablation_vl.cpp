// Ablation: vector length 4 (AVX2, the paper's setting) vs 8 (AVX-512) for
// the 2D Jacobi engines.  Wider lanes advance 8 time steps per tile —
// half the memory traffic, deeper scalar edge triangles, and (on most
// parts) a lower AVX-512 clock.  This quantifies the paper's future-work
// trade-off.
#include <string>

#include "bench_util/bench.hpp"
#include "tv/tv2d.hpp"
#include "tv/tv2d_wide.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const stencil::C2D5 c = stencil::heat2d(0.2);
  b::print_title("Ablation  Heat-2D vector length 4 vs 8 (Gstencils/s)");
  b::print_header({"size", "vl=4", "vl=8"});
  for (int n = 256; n <= 2048; n *= 2) {
    const long steps = std::max<long>(16, (1L << 24) / (static_cast<long>(n) * n));
    const double pts = static_cast<double>(n) * n * static_cast<double>(steps);
    grid::Grid2D<double> u(n, n);
    for (int x = 0; x <= n + 1; ++x)
      for (int y = 0; y <= n + 1; ++y) u.at(x, y) = 0.001 * ((x + y) % 83);
    const double r4 = b::measure_gstencils(
        pts, [&] { tv::tv_jacobi2d5_run(c, u, steps, 2); });
    const double r8 = b::measure_gstencils(
        pts, [&] { tv::tv_jacobi2d5_run_vl8(c, u, steps, 2); });
    b::print_row({std::to_string(n), b::fmt(r4), b::fmt(r8)});
  }
  return 0;
}
