// Ablation: vector length 4 (the paper's setting) vs 8 (AVX-512) across
// the 1D, 2D and 3D Jacobi temporal engines.  Wider lanes advance 8 time
// steps per tile — half the memory traffic, deeper scalar edge triangles,
// and (on most parts) a lower AVX-512 clock.  This quantifies the paper's
// future-work trade-off per kernel.
//
// The columns pin their engines through the registry's width axis
// (reg.get_at(id, backend, vl)) instead of using the public entry points:
// on an AVX-512 host the avx512 backend serves EVERY id with its vl = 8
// engine, so a dispatched tv_jacobi*_run would silently measure vl = 8
// against itself.  The backend ceiling is selected_backend(), so
// TVS_FORCE_BACKEND pins this bench like everything else (matching the
// backend stamp run_all.sh writes into the BENCH JSON): by default the
// vl = 4 column resolves to the avx2 engine (scalar without AVX2) and the
// vl = 8 column to the AVX-512 engine (ScalarVec<double, 8> elsewhere).
#include <algorithm>
#include <string>

#include "bench_util/bench.hpp"
#include "dispatch/kernels.hpp"
#include "dispatch/registry.hpp"

namespace {

using namespace tvs;
namespace b = tvs::bench;

void speedup_row(const std::string& size, double r4, double r8) {
  b::print_row({size, b::fmt(r4), b::fmt(r8),
                r4 > 0.0 ? b::fmt(r8 / r4, 2) : "n/a"});
}

void sweep_1d(const dispatch::KernelRegistry& reg) {
  const dispatch::Backend at = dispatch::selected_backend();
  auto* run4 = reg.get_at<dispatch::TvJacobi1D3Fn>(dispatch::kTvJacobi1D3, at, 4);
  auto* run8 = reg.get_at<dispatch::TvJacobi1D3Fn>(dispatch::kTvJacobi1D3, at, 8);
  const stencil::C1D3 c = stencil::heat1d(0.25);
  b::print_title("Ablation  Heat-1D vector length 4 vs 8 (Gstencils/s)");
  b::print_header({"size", "vl=4", "vl=8", "speedup"});
  for (int n = 1 << 16; n <= 1 << 19; n *= 2) {
    const long steps = std::max<long>(16, (1L << 26) / n);
    const double pts = static_cast<double>(n) * static_cast<double>(steps);
    grid::Grid1D<double> u(n);
    for (int x = 0; x <= n + 1; ++x) u.at(x) = 0.001 * (x % 83);
    const double r4 = b::measure_gstencils(pts, [&] { run4(c, u, steps, 7); });
    const double r8 = b::measure_gstencils(pts, [&] { run8(c, u, steps, 7); });
    speedup_row(std::to_string(n), r4, r8);
  }
}

void sweep_2d(const dispatch::KernelRegistry& reg) {
  const dispatch::Backend at = dispatch::selected_backend();
  auto* run4 = reg.get_at<dispatch::TvJacobi2D5Fn>(dispatch::kTvJacobi2D5, at, 4);
  auto* run8 = reg.get_at<dispatch::TvJacobi2D5Fn>(dispatch::kTvJacobi2D5, at, 8);
  const stencil::C2D5 c = stencil::heat2d(0.2);
  b::print_title("Ablation  Heat-2D vector length 4 vs 8 (Gstencils/s)");
  b::print_header({"size", "vl=4", "vl=8", "speedup"});
  for (int n = 256; n <= 2048; n *= 2) {
    const long steps =
        std::max<long>(16, (1L << 24) / (static_cast<long>(n) * n));
    const double pts = static_cast<double>(n) * n * static_cast<double>(steps);
    grid::Grid2D<double> u(n, n);
    for (int x = 0; x <= n + 1; ++x)
      for (int y = 0; y <= n + 1; ++y) u.at(x, y) = 0.001 * ((x + y) % 83);
    const double r4 = b::measure_gstencils(pts, [&] { run4(c, u, steps, 2); });
    const double r8 = b::measure_gstencils(pts, [&] { run8(c, u, steps, 2); });
    speedup_row(std::to_string(n), r4, r8);
  }
}

void sweep_3d(const dispatch::KernelRegistry& reg) {
  const dispatch::Backend at = dispatch::selected_backend();
  auto* run4 = reg.get_at<dispatch::TvJacobi3D7Fn>(dispatch::kTvJacobi3D7, at, 4);
  auto* run8 = reg.get_at<dispatch::TvJacobi3D7Fn>(dispatch::kTvJacobi3D7, at, 8);
  const stencil::C3D7 c = stencil::heat3d(0.15);
  b::print_title("Ablation  Heat-3D vector length 4 vs 8 (Gstencils/s)");
  b::print_header({"size", "vl=4", "vl=8", "speedup"});
  for (int n = 64; n <= 256; n *= 2) {
    const long nn = static_cast<long>(n) * n * n;
    const long steps = std::max<long>(8, (1L << 24) / nn);
    const double pts = static_cast<double>(nn) * static_cast<double>(steps);
    grid::Grid3D<double> u(n, n, n);
    for (int x = 0; x <= n + 1; ++x)
      for (int y = 0; y <= n + 1; ++y)
        for (int z = 0; z <= n + 1; ++z)
          u.at(x, y, z) = 0.001 * ((x + y + z) % 83);
    const double r4 = b::measure_gstencils(pts, [&] { run4(c, u, steps, 2); });
    const double r8 = b::measure_gstencils(pts, [&] { run8(c, u, steps, 2); });
    speedup_row(std::to_string(n), r4, r8);
  }
}

}  // namespace

int main() {
  const auto& reg = dispatch::KernelRegistry::instance();
  sweep_1d(reg);
  sweep_2d(reg);
  sweep_3d(reg);
  return 0;
}
