// Ablation: vector length 4 (AVX2, the paper's setting) vs 8 (AVX-512) for
// the 2D Jacobi engines.  Wider lanes advance 8 time steps per tile —
// half the memory traffic, deeper scalar edge triangles, and (on most
// parts) a lower AVX-512 clock.  This quantifies the paper's future-work
// trade-off.
//
// The columns pin their engines through the registry instead of using the
// public entry points: on an AVX-512 host the avx512 backend serves the
// standard 2D ids with the vl = 8 engine, so a dispatched tv_jacobi2d5_run
// would silently measure vl = 8 against itself.
#include <string>

#include "bench_util/bench.hpp"
#include "dispatch/kernels.hpp"
#include "dispatch/registry.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const auto& reg = dispatch::KernelRegistry::instance();
  // vl = 4: the avx2 variant when this CPU runs it, ScalarVec<double, 4>
  // otherwise (get_at falls back downward, never upward).
  const dispatch::Backend vl4_at = dispatch::cpu_supports(dispatch::Backend::kAvx2)
                                       ? dispatch::Backend::kAvx2
                                       : dispatch::Backend::kScalar;
  auto* run4 = reg.get_at<dispatch::TvJacobi2D5Fn>(dispatch::kTvJacobi2D5, vl4_at);
  // vl = 8: the dedicated vl8 id (VecD8 under avx512, ScalarVec<double, 8>
  // elsewhere) at the best backend this CPU supports.
  auto* run8 = reg.get_at<dispatch::TvJacobi2D5Fn>(dispatch::kTvJacobi2D5Vl8,
                                                   dispatch::best_available());

  const stencil::C2D5 c = stencil::heat2d(0.2);
  b::print_title("Ablation  Heat-2D vector length 4 vs 8 (Gstencils/s)");
  b::print_header({"size", "vl=4", "vl=8"});
  for (int n = 256; n <= 2048; n *= 2) {
    const long steps = std::max<long>(16, (1L << 24) / (static_cast<long>(n) * n));
    const double pts = static_cast<double>(n) * n * static_cast<double>(steps);
    grid::Grid2D<double> u(n, n);
    for (int x = 0; x <= n + 1; ++x)
      for (int y = 0; y <= n + 1; ++y) u.at(x, y) = 0.001 * ((x + y) % 83);
    const double r4 = b::measure_gstencils(pts, [&] { run4(c, u, steps, 2); });
    const double r8 = b::measure_gstencils(pts, [&] { run8(c, u, steps, 2); });
    b::print_row({std::to_string(n), b::fmt(r4), b::fmt(r8)});
  }
  return 0;
}
