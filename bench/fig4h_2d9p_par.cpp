// Figure 4h: 2D9P parallel scaling; diamond-on-x, Table 1: 256^2 x 64.
#include "baseline/autovec.hpp"
#include "bench_util/bench.hpp"
#include "common.hpp"
#include "tiling/diamond2d.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const int n = b::full_mode() ? 8000 : 2048;
  const long steps = b::full_mode() ? 512 : 128;
  const stencil::C2D9 c = stencil::box2d9(0.1);
  const double pts = static_cast<double>(n) * n * static_cast<double>(steps);

  grid::PingPong<grid::Grid2D<double>> pp(n, n);
  for (int x = 0; x <= n + 1; ++x)
    for (int y = 0; y <= n + 1; ++y)
      pp.even().at(x, y) = 0.001 * ((x * 13 + y) % 83);
  tiling::fix_boundaries2d(pp);
  grid::Grid2D<double> ua(n, n);
  for (int x = 0; x <= n + 1; ++x)
    for (int y = 0; y <= n + 1; ++y) ua.at(x, y) = pp.even().at(x, y);

  tiling::Diamond2DOptions our;
  our.width = 256;
  our.height = 64;
  tiling::Diamond2DOptions sc = our;
  sc.use_vector = false;

  benchx::par_figure(
      "Fig 4h  2D9P parallel, diamond 256x64 on x (Gstencils/s)",
      {{"our",
        [&](int) {
          return b::measure_gstencils(
              pts, [&] { tiling::diamond_jacobi2d9_run(c, pp, steps, our); });
        }},
       {"auto",
        [&](int) {
          return b::measure_gstencils(pts, [&] {
            baseline::par_autovec_jacobi2d9_run(c, ua, steps);
          });
        }},
       {"tiled-auto", [&](int) {
          return b::measure_gstencils(
              pts, [&] { tiling::diamond_jacobi2d9_run(c, pp, steps, sc); });
        }}});
  return 0;
}
