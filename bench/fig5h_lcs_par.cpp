// Figure 5h: LCS parallel scaling; rectangle tiling + wavefront,
// Table 1: 4096 x 4096 blocks on a 200000^2 DP matrix (scaled by default).
#include <random>
#include <vector>

#include "bench_util/bench.hpp"
#include "common.hpp"
#include "solver/solver.hpp"
#include "tiling/lcs_wavefront.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const int n = b::full_mode() ? 200000 : 40000;
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<std::int32_t> d(0, 3);
  std::vector<std::int32_t> a(static_cast<std::size_t>(n)),
      bseq(static_cast<std::size_t>(n));
  for (auto& v : a) v = d(rng);
  for (auto& v : bseq) v = d(rng);
  const double pts = static_cast<double>(n) * static_cast<double>(n);

  // "our" through the Solver facade, pinned to Table 1's 4096 x 4096.
  const solver::StencilProblem prob =
      solver::problem_2d(solver::Family::kLcs, n, n, 0);
  solver::ExecutionPlan plan = solver::heuristic_plan(prob);
  plan.path = solver::Path::kTiledParallel;
  plan.tile_w = 4096;
  plan.tile_h = 4096;
  const solver::Solver solve(prob, plan);

  tiling::LcsWavefrontOptions sc;  // identical tiling, scalar DP rows
  sc.block = plan.tile_w;
  sc.band = plan.tile_h;
  sc.use_vector = false;

  volatile std::int32_t sink = 0;
  benchx::par_figure(
      "Fig 5h  LCS parallel, rectangle 4096x4096 wavefront (Gcells/s)",
      {{"our",
        [&](int) {
          return b::measure_gstencils(
              pts, [&] { sink = solve.lcs(a, bseq); });
        }},
       {"scalar", [&](int) {
          return b::measure_gstencils(
              pts, [&] { sink = tiling::lcs_wavefront(a, bseq, sc); });
        }}});
  (void)sink;
  return 0;
}
