#!/usr/bin/env python3
"""Unit tests for compare_bench.py (geomean math, missing-row handling,
the >threshold regression gate, schema/shared-row error paths).

Run directly (python3 bench/test_compare_bench.py) or via unittest
discovery; CI runs it in the bench-regression job before the real gate.
"""
import json
import math
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import compare_bench  # noqa: E402


def doc(benches):
    return {"schema": "tvs-bench-v1", "host": "test", "benches": benches}


def bench(name, rows, columns=("size", "our", "scalar"), title="T"):
    return {
        "name": name,
        "tables": [{"title": title, "columns": list(columns),
                    "rows": [list(r) for r in rows]}],
    }


class RateRowsTest(unittest.TestCase):
    def test_extracts_requested_column(self):
        d = doc([bench("b1", [["2^10", 3.5, 1.0], ["2^11", 4.0, 1.1]])])
        rates = compare_bench.rate_rows(d, "our")
        self.assertEqual(rates[("b1", "T", "2^10")], 3.5)
        self.assertEqual(rates[("b1", "T", "2^11")], 4.0)

    def test_skips_tables_without_column(self):
        d = doc([bench("b1", [["r", 1.2]], columns=("size", "speedup"))])
        self.assertEqual(compare_bench.rate_rows(d, "our"), {})

    def test_skips_error_benches_and_nonpositive_rates(self):
        d = doc([
            {"name": "broken", "error": "exit-1"},
            bench("ok", [["a", 0.0, 1.0], ["b", -1.0, 1.0], ["c", 2.0, 1.0]]),
        ])
        rates = compare_bench.rate_rows(d, "our")
        self.assertEqual(list(rates), [("ok", "T", "c")])

    def test_non_numeric_cells_are_ignored(self):
        d = doc([bench("b", [["a", "1.5x", 1.0], ["b", 2.0, 1.0]])])
        rates = compare_bench.rate_rows(d, "our")
        self.assertEqual(list(rates), [("b", "T", "b")])


class CompareMainTest(unittest.TestCase):
    def run_main(self, base, cur, *extra):
        with tempfile.TemporaryDirectory() as tmp:
            bp = os.path.join(tmp, "base.json")
            cp = os.path.join(tmp, "cur.json")
            with open(bp, "w") as f:
                json.dump(base, f)
            with open(cp, "w") as f:
                json.dump(cur, f)
            return compare_bench.main(["compare_bench.py", bp, cp] +
                                      list(extra))

    def test_identical_docs_pass(self):
        d = doc([bench("b", [["a", 3.0, 1.0]])])
        self.assertEqual(self.run_main(d, d), 0)

    def test_geomean_gate_fails_beyond_threshold(self):
        base = doc([bench("b", [["a", 1.0, 1.0], ["b", 1.0, 1.0]])])
        # geomean(0.5, 1.0) = sqrt(0.5) ~ 0.707 < 0.8 -> fail
        cur = doc([bench("b", [["a", 0.5, 1.0], ["b", 1.0, 1.0]])])
        self.assertEqual(self.run_main(base, cur), 1)

    def test_geomean_gate_passes_within_threshold(self):
        base = doc([bench("b", [["a", 1.0, 1.0], ["b", 1.0, 1.0]])])
        # geomean(0.9, 1.0) ~ 0.949 >= 0.8 -> pass
        cur = doc([bench("b", [["a", 0.9, 1.0], ["b", 1.0, 1.0]])])
        self.assertEqual(self.run_main(base, cur), 0)

    def test_custom_threshold(self):
        base = doc([bench("b", [["a", 1.0, 1.0]])])
        cur = doc([bench("b", [["a", 0.93, 1.0]])])
        self.assertEqual(self.run_main(base, cur, "--threshold", "0.05"), 1)
        self.assertEqual(self.run_main(base, cur, "--threshold", "0.10"), 0)

    def test_missing_rows_are_skipped_not_fatal(self):
        # Baseline recorded in full mode (more sizes) stays comparable over
        # the shared rows; the extra baseline row must not poison the gate.
        base = doc([bench("b", [["a", 1.0, 1.0], ["full-only", 9.0, 1.0]])])
        cur = doc([bench("b", [["a", 1.0, 1.0], ["quick-only", 0.1, 1.0]])])
        self.assertEqual(self.run_main(base, cur), 0)

    def test_new_bench_without_baseline_rows_is_skipped(self):
        base = doc([bench("old", [["a", 1.0, 1.0]])])
        cur = doc([bench("old", [["a", 1.0, 1.0]]),
                   bench("brand-new", [["a", 0.01, 1.0]])])
        self.assertEqual(self.run_main(base, cur), 0)

    def test_no_shared_rows_is_an_error(self):
        base = doc([bench("b1", [["a", 1.0, 1.0]])])
        cur = doc([bench("b2", [["a", 1.0, 1.0]])])
        self.assertEqual(self.run_main(base, cur), 2)

    def test_bad_schema_is_an_error(self):
        good = doc([bench("b", [["a", 1.0, 1.0]])])
        bad = {"schema": "something-else", "benches": []}
        self.assertEqual(self.run_main(bad, good), 2)
        self.assertEqual(self.run_main(good, bad), 2)

    def test_geomean_is_geometric_not_arithmetic(self):
        base = doc([bench("b", [["a", 1.0, 1.0], ["b", 1.0, 1.0]])])
        # ratios 0.5 and 1.31: arithmetic mean 0.905 would pass a 0.2 gate,
        # geomean sqrt(0.655) ~ 0.809 also passes, but at 0.19 threshold
        # (gate 0.81) the geomean fails while the arithmetic mean would not.
        cur = doc([bench("b", [["a", 0.5, 1.0], ["b", 1.31, 1.0]])])
        geo = math.sqrt(0.5 * 1.31)
        self.assertLess(geo, 0.81)
        self.assertEqual(self.run_main(base, cur, "--threshold", "0.19"), 1)
        self.assertEqual(self.run_main(base, cur, "--threshold", "0.20"), 0)


if __name__ == "__main__":
    unittest.main()
