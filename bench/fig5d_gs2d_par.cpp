// Figure 5d: GS-2D parallel scaling; parallelogram wavefront on x,
// Table 1: 128^2 x 32.
#include "bench_util/bench.hpp"
#include "common.hpp"
#include "solver/solver.hpp"
#include "tiling/parallelogram2d.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const int n = b::full_mode() ? 8000 : 1536;
  const long sweeps = b::full_mode() ? 512 : 256;
  const stencil::C2D5 c = stencil::heat2d(0.2);
  const double pts = static_cast<double>(n) * n * static_cast<double>(sweeps);

  grid::Grid2D<double> u(n, n);
  for (int x = 0; x <= n + 1; ++x)
    for (int y = 0; y <= n + 1; ++y) u.at(x, y) = 0.001 * ((x * 29 + y) % 97);

  // "our" through the Solver facade, pinned to Table 1's blocking.
  const solver::StencilProblem prob =
      solver::problem_2d(solver::Family::kGs2D5, n, n, sweeps);
  solver::ExecutionPlan plan = solver::heuristic_plan(prob);
  plan.path = solver::Path::kTiledParallel;
  plan.tile_w = 128;
  plan.tile_h = b::full_mode() ? 32 : 8;
  const solver::Solver solve(prob, plan);

  tiling::ParallelogramNDOptions sc;  // identical tiling, scalar tiles
  sc.width = plan.tile_w;
  sc.height = plan.tile_h;
  sc.use_vector = false;

  benchx::par_figure(
      "Fig 5d  GS-2D parallel, parallelogram 128x32 on x (Gstencils/s)",
      {{"our",
        [&](int) {
          return b::measure_gstencils(pts, [&] { solve.run(c, u); });
        }},
       {"scalar", [&](int) {
          return b::measure_gstencils(pts, [&] {
            tiling::parallelogram_gs2d5_run(c, u, sweeps, sc);
          });
        }}});
  return 0;
}
