// Figure 5c: GS-2D sequential, size sweep.
#include "bench_util/bench.hpp"
#include "solver/solver.hpp"
#include "stencil/reference2d.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const stencil::C2D5 c = stencil::heat2d(0.2);
  b::print_title("Fig 5c  GS-2D sequential (Gstencils/s)");
  b::print_header({"size", "our", "scalar"});
  const int hi = b::full_mode() ? 8192 : 2048;
  for (int n = 128; n <= hi; n *= 2) {
    const long sweeps = std::max<long>(8, (b::full_mode() ? 1L << 26 : 1L << 23) /
                                              (static_cast<long>(n) * n));
    const double pts = static_cast<double>(n) * n * static_cast<double>(sweeps);
    grid::Grid2D<double> u(n, n);
    for (int x = 0; x <= n + 1; ++x)
      for (int y = 0; y <= n + 1; ++y) u.at(x, y) = 0.001 * ((x * 29 + y) % 97);
    const solver::Solver solve(
        solver::problem_2d(solver::Family::kGs2D5, n, n, sweeps));
    const double r_our =
        b::measure_gstencils(pts, [&] { solve.run(c, u); });
    const double r_sc =
        b::measure_gstencils(pts, [&] { stencil::gs2d5_run(c, u, sweeps); });
    b::print_row({std::to_string(n), b::fmt(r_our), b::fmt(r_sc)});
  }
  return 0;
}
