// Shared helpers for the figure-regeneration benchmarks: thread-sweep
// driver for the parallel figures and size-sweep scaffolding for the
// sequential ones.  Quick sizes by default; TVS_BENCH_FULL=1 switches to
// the paper's Table 1 problem sizes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bench_util/bench.hpp"
#include "util/omp_compat.hpp"

namespace tvs::benchx {

// Runs one parallel figure: for each thread count prints one row with a
// rate per variant.  Each variant is (name, fn(threads) -> Gstencils/s).
struct ParVariant {
  std::string name;
  std::function<double(int)> rate;
};

inline void par_figure(const std::string& title,
                       const std::vector<ParVariant>& variants) {
  namespace b = tvs::bench;
  b::print_title(title);
  std::vector<std::string> hdr{"threads"};
  for (const auto& v : variants) hdr.push_back(v.name);
  b::print_header(hdr);
#if defined(_OPENMP)
  const int saved = omp_get_max_threads();
  for (const int t : b::thread_sweep()) {
    omp_set_num_threads(t);
    std::vector<std::string> row{std::to_string(t)};
    for (const auto& v : variants) row.push_back(b::fmt(v.rate(t)));
    b::print_row(row);
  }
  omp_set_num_threads(saved);
#else
  // Serial build: the sweep collapses to a single one-thread row.
  std::vector<std::string> row{"1"};
  for (const auto& v : variants) row.push_back(b::fmt(v.rate(1)));
  b::print_row(row);
#endif
}

}  // namespace tvs::benchx
