// Figure 5a: Gauss-Seidel 1D sequential, size sweep 2^7..2^23; curves
// our / scalar (no spatial vectorization of Gauss-Seidel exists).
#include "bench_util/bench.hpp"
#include "solver/solver.hpp"
#include "stencil/reference1d.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const stencil::C1D3 c = stencil::heat1d(0.25);
  b::print_title("Fig 5a  GS-1D sequential (Gstencils/s)");
  b::print_header({"size=2^x", "our", "scalar"});
  const int hi = b::full_mode() ? 23 : 20;
  for (int e = 7; e <= hi; ++e) {
    const int nx = 1 << e;
    const long sweeps =
        std::max<long>(8, (b::full_mode() ? 1L << 26 : 1L << 23) / nx);
    const double pts = static_cast<double>(nx) * static_cast<double>(sweeps);
    grid::Grid1D<double> u(nx);
    for (int x = 0; x <= nx + 1; ++x) u.at(x) = 1.0 + 0.001 * (x % 97);
    const solver::Solver solve(
        solver::problem_1d(solver::Family::kGs1D3, nx, sweeps));
    const double r_our =
        b::measure_gstencils(pts, [&] { solve.run(c, u); });
    const double r_sc =
        b::measure_gstencils(pts, [&] { stencil::gs1d3_run(c, u, sweeps); });
    b::print_row({"2^" + std::to_string(e), b::fmt(r_our), b::fmt(r_sc)});
  }
  return 0;
}
