// Figure 5e: GS-3D sequential, size sweep.
#include "bench_util/bench.hpp"
#include "solver/solver.hpp"
#include "stencil/reference3d.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const stencil::C3D7 c = stencil::heat3d(0.1);
  b::print_title("Fig 5e  GS-3D sequential (Gstencils/s)");
  b::print_header({"size", "our", "scalar"});
  const int hi = b::full_mode() ? 512 : 192;
  for (int n = 16; n <= hi; n *= 2) {
    const long sweeps = std::max<long>(
        4, (b::full_mode() ? 1L << 26 : 1L << 23) /
               (static_cast<long>(n) * n * n));
    const double pts =
        static_cast<double>(n) * n * n * static_cast<double>(sweeps);
    grid::Grid3D<double> u(n, n, n);
    for (int x = 0; x <= n + 1; ++x)
      for (int y = 0; y <= n + 1; ++y)
        for (int z = 0; z <= n + 1; ++z)
          u.at(x, y, z) = 0.001 * ((x * 5 + y * 3 + z) % 97);
    const solver::Solver solve(
        solver::problem_3d(solver::Family::kGs3D7, n, n, n, sweeps));
    const double r_our =
        b::measure_gstencils(pts, [&] { solve.run(c, u); });
    const double r_sc =
        b::measure_gstencils(pts, [&] { stencil::gs3d7_run(c, u, sweeps); });
    b::print_row({std::to_string(n), b::fmt(r_our), b::fmt(r_sc)});
  }
  return 0;
}
