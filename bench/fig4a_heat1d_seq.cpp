// Figure 4a: Heat-1D sequential performance vs problem size.
//
// Paper setup: sizes 2^7..2^23, curves our / auto / scalar, Gstencils/s.
// Here `auto` is both the compiler-vectorized plain loop and (printed as
// extra columns) the explicit multi-load / reorg / DLT baselines of §2.2,
// so the anatomy of the data-alignment conflict is visible directly.
#include <string>
#include <vector>

#include "baseline/autovec.hpp"
#include "baseline/spatial.hpp"
#include "bench_util/bench.hpp"
#include "solver/solver.hpp"
#include "stencil/reference1d.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;

  const stencil::C1D3 c = stencil::heat1d(0.25);
  const int lo = 7;
  const int hi = b::full_mode() ? 23 : 20;

  b::print_title("Fig 4a  Heat-1D sequential (Gstencils/s)");
  b::print_header({"size=2^x", "our", "auto", "scalar", "multiload", "reorg",
                   "dlt"});

  for (int e = lo; e <= hi; ++e) {
    const int nx = 1 << e;
    // Keep total points per measurement roughly constant.
    const long steps =
        std::max<long>(8, (b::full_mode() ? 1L << 26 : 1L << 23) / nx);
    const double pts = static_cast<double>(nx) * static_cast<double>(steps);

    grid::Grid1D<double> u(nx);
    for (int x = 0; x <= nx + 1; ++x)
      u.at(x) = 1.0 + 0.001 * (x % 97);

    const solver::Solver solve(
        solver::problem_1d(solver::Family::kJacobi1D3, nx, steps));
    const double r_our =
        b::measure_gstencils(pts, [&] { solve.run(c, u); });
    const double r_auto = b::measure_gstencils(
        pts, [&] { baseline::autovec_jacobi1d3_run(c, u, steps); });
    const double r_scalar = b::measure_gstencils(
        pts, [&] { stencil::jacobi1d3_run(c, u, steps); });
    const double r_ml = b::measure_gstencils(
        pts, [&] { baseline::multiload_jacobi1d3_run(c, u, steps); });
    const double r_ro = b::measure_gstencils(
        pts, [&] { baseline::reorg_jacobi1d3_run(c, u, steps); });
    const double r_dlt = b::measure_gstencils(
        pts, [&] { baseline::dlt_jacobi1d3_run(c, u, steps); });

    b::print_row({"2^" + std::to_string(e), b::fmt(r_our), b::fmt(r_auto),
                  b::fmt(r_scalar), b::fmt(r_ml), b::fmt(r_ro),
                  b::fmt(r_dlt)});
  }
  return 0;
}
