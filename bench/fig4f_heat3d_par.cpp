// Figure 4f: Heat-3D parallel scaling; diamond-on-x, Table 1: 32^3 x 8.
#include "baseline/autovec.hpp"
#include "bench_util/bench.hpp"
#include "common.hpp"
#include "solver/solver.hpp"
#include "tiling/diamond3d.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const int n = b::full_mode() ? 800 : 256;
  const long steps = b::full_mode() ? 200 : 64;
  const stencil::C3D7 c = stencil::heat3d(0.1);
  const double pts =
      static_cast<double>(n) * n * n * static_cast<double>(steps);

  grid::PingPong<grid::Grid3D<double>> pp(n, n, n);
  for (int x = 0; x <= n + 1; ++x)
    for (int y = 0; y <= n + 1; ++y)
      for (int z = 0; z <= n + 1; ++z)
        pp.even().at(x, y, z) = 0.001 * ((x * 7 + y * 3 + z) % 89);
  tiling::fix_boundaries3d(pp);
  grid::Grid3D<double> ua(n, n, n);
  for (int x = 0; x <= n + 1; ++x)
    for (int y = 0; y <= n + 1; ++y)
      for (int z = 0; z <= n + 1; ++z) ua.at(x, y, z) = pp.even().at(x, y, z);

  // "our" through the Solver facade, pinned to Table 1's 32^3 x 8.
  const solver::StencilProblem prob =
      solver::problem_3d(solver::Family::kJacobi3D7, n, n, n, steps);
  solver::ExecutionPlan plan = solver::heuristic_plan(prob);
  plan.path = solver::Path::kTiledParallel;
  plan.tile_w = 32;
  plan.tile_h = 8;
  const solver::Solver solve(prob, plan);

  tiling::Diamond3DOptions sc;  // identical tiling, scalar tiles
  sc.width = plan.tile_w;
  sc.height = plan.tile_h;
  sc.use_vector = false;

  benchx::par_figure(
      "Fig 4f  Heat-3D parallel, diamond 32x8 on x (Gstencils/s)",
      {{"our",
        [&](int) {
          return b::measure_gstencils(pts, [&] { solve.run(c, pp); });
        }},
       {"auto",
        [&](int) {
          return b::measure_gstencils(pts, [&] {
            baseline::par_autovec_jacobi3d7_run(c, ua, steps);
          });
        }},
       {"tiled-auto", [&](int) {
          return b::measure_gstencils(
              pts, [&] { tiling::diamond_jacobi3d7_run(c, pp, steps, sc); });
        }}});
  return 0;
}
