// Micro-benchmarks (google-benchmark) for the data-reorganization claims of
// §3.3: the per-output reorganization cost of the temporal scheme is a
// small constant (rotate + blend + amortized top/bottom handling),
// independent of stencil order, and the lane-crossing rotate dominates it.
#include <benchmark/benchmark.h>

#include "simd/reorg.hpp"
#include "simd/vec.hpp"

namespace {

using V = tvs::simd::NativeVec<double, 4>;

void BM_RotateUp(benchmark::State& state) {
  V v = V::set1(1.0);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) v = tvs::simd::rotate_up(v);
    benchmark::DoNotOptimize(&v);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_RotateUp);

void BM_ShiftInLowV(benchmark::State& state) {
  V v = V::set1(1.0);
  const V fresh = V::set1(2.0);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) v = tvs::simd::shift_in_low_v(v, fresh);
    benchmark::DoNotOptimize(&v);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ShiftInLowV);

void BM_CollectTops(benchmark::State& state) {
  V a = V::set1(1), b = V::set1(2), c = V::set1(3), d = V::set1(4);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      a = tvs::simd::collect_tops(a, b, c, d);
      benchmark::DoNotOptimize(&a);
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_CollectTops);

// One steady-state temporal-vectorization iteration (stencil + reorg) vs
// one multiload spatial iteration: the reorganization overhead per output
// vector in isolation (both L1-resident).
void BM_TvSteadyIteration(benchmark::State& state) {
  alignas(64) double buf[512];
  for (int i = 0; i < 512; ++i) buf[i] = 1.0 + i * 1e-3;
  V ring[8];
  for (int i = 0; i < 8; ++i) ring[i] = V::load(buf + 4 * i);
  const V cw = V::set1(0.25), cc = V::set1(0.5), ce = V::set1(0.25);
  int x = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      const int i0 = x & 7, i1 = (x + 1) & 7, i2 = (x + 2) & 7;
      V acc = cc * ring[i1];
      acc = fma(cw, ring[i0], acc);
      acc = fma(ce, ring[i2], acc);
      ring[i0] = tvs::simd::shift_in_low(acc, buf[(x * 4) & 255]);
      ++x;
    }
    benchmark::DoNotOptimize(ring);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 4);
}
BENCHMARK(BM_TvSteadyIteration);

void BM_MultiloadIteration(benchmark::State& state) {
  alignas(64) double in[512], out[512];
  for (int i = 0; i < 512; ++i) in[i] = 1.0 + i * 1e-3;
  const V cw = V::set1(0.25), cc = V::set1(0.5), ce = V::set1(0.25);
  for (auto _ : state) {
    for (int x = 4; x < 500; x += 4) {
      V acc = cc * V::loadu(in + x);
      acc = fma(cw, V::loadu(in + x - 1), acc);
      acc = fma(ce, V::loadu(in + x + 1), acc);
      acc.storeu(out + x);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 124 * 4);
}
BENCHMARK(BM_MultiloadIteration);

}  // namespace

BENCHMARK_MAIN();
