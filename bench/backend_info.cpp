// Prints the runtime dispatch state as `key=value` lines, one per line —
// consumed by bench/run_all.sh to stamp the resolved backend and CPU
// capabilities into the BENCH JSON metadata, so perf trajectories recorded
// on different hosts (or under different TVS_FORCE_BACKEND pins) stay
// interpretable.
//
// Keys:
//   selected_backend   what dispatched kernel calls will use (honours
//                      TVS_FORCE_BACKEND; `error` if the forced value is
//                      unavailable — reported instead of crashing the run)
//   best_available     highest compiled+executable backend
//   cpu_avx2/avx512    CPUID: can this host execute the backend?
//   compiled_avx2/...  was the backend compiled into this binary?
#include <cstdio>
#include <exception>
#include <string>

#include "dispatch/backend.hpp"
#include "dispatch/registry.hpp"

int main() {
  using namespace tvs::dispatch;
  const auto& reg = KernelRegistry::instance();
  try {
    std::printf("selected_backend=%s\n",
                std::string(backend_name(selected_backend())).c_str());
  } catch (const std::exception&) {
    std::printf("selected_backend=error\n");
  }
  std::printf("best_available=%s\n",
              std::string(backend_name(best_available())).c_str());
  std::printf("cpu_avx2=%d\n", cpu_supports(Backend::kAvx2) ? 1 : 0);
  std::printf("cpu_avx512=%d\n", cpu_supports(Backend::kAvx512) ? 1 : 0);
  std::printf("compiled_avx2=%d\n", reg.has_backend(Backend::kAvx2) ? 1 : 0);
  std::printf("compiled_avx512=%d\n",
              reg.has_backend(Backend::kAvx512) ? 1 : 0);
  return 0;
}
