#!/usr/bin/env python3
"""Convert the aligned-table stdout of the bench binaries into JSON.

The bench harness (src/bench_util/bench.cpp) prints

    == <title> ==
    <col> <col> ...          (header, fixed-width cells)
    <cell> <cell> ...        (rows)

one or more tables per binary.  This script reads a set of
`<name>.txt` capture files and emits one JSON document:

    {"schema": "tvs-bench-v1", "generated_by": ..., "host": ...,
     "mode": "quick"|"full",
     "benches": [{"name": ..., "seconds": ...,
                  "tables": [{"title": ..., "columns": [...],
                              "rows": [[...], ...]}]}]}

Numeric cells are parsed as floats; everything else stays a string.

Usage: parse_tables.py <out.json> <name=seconds=capture.txt> ...
"""
import json
import os
import platform
import sys


def parse_cell(cell):
    try:
        return float(cell)
    except ValueError:
        return cell


def parse_capture(path):
    tables = []
    current = None
    with open(path, "r", errors="replace") as f:
        for line in f:
            line = line.rstrip("\n")
            if line.startswith("== ") and line.endswith(" =="):
                current = {"title": line[3:-3].strip(), "columns": [],
                           "rows": []}
                tables.append(current)
                continue
            cells = line.split()
            if current is None or not cells:
                continue
            if all(set(c) == {"-"} for c in cells):
                continue  # the dashed separator under the header
            if not current["columns"]:
                current["columns"] = cells
            else:
                current["rows"].append([parse_cell(c) for c in cells])
    return tables


def main(argv):
    if len(argv) < 2:
        sys.stderr.write(__doc__)
        return 2
    out_path = argv[1]
    benches = []
    for spec in argv[2:]:
        name, seconds, path = spec.split("=", 2)
        benches.append({
            "name": name,
            "seconds": float(seconds),
            "tables": parse_capture(path),
        })
    doc = {
        "schema": "tvs-bench-v1",
        "generated_by": "bench/run_all.sh",
        "host": platform.node(),
        "machine": platform.machine(),
        "mode": "full" if os.environ.get("TVS_BENCH_FULL") == "1"
                else "quick",
        "benches": benches,
    }
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print("wrote %s (%d benches)" % (out_path, len(benches)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
