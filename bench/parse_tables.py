#!/usr/bin/env python3
"""Convert the aligned-table stdout of the bench binaries into JSON.

The bench harness (src/bench_util/bench.cpp) prints

    == <title> ==
    <col> <col> ...          (header, fixed-width cells)
    <cell> <cell> ...        (rows)

one or more tables per binary.  This script reads a set of
`<name>.txt` capture files and emits one JSON document:

    {"schema": "tvs-bench-v1", "generated_by": ..., "host": ...,
     "mode": "quick"|"full",
     "backend": {"selected_backend": ..., "cpu_avx512": ...},  # backend_info
     "cpu_features": ["avx", "avx2", ...],                     # CPUID flags
     "benches": [{"name": ..., "seconds": ...,
                  "tables": [{"title": ..., "columns": [...],
                              "rows": [[...], ...]}]}]}

The "backend" dict is parsed from the key=value lines run_all.sh captures
from the backend_info binary (TVS_BENCH_BACKEND_INFO); "cpu_features" is
the SIMD-relevant subset of this host's CPUID flags (/proc/cpuinfo where
available).  Both are best-effort: absent data yields {} / [].

A bench that failed (missing binary, non-zero exit, unreadable or partial
capture) still gets an entry, with an "error" field describing what went
wrong, instead of aborting the whole conversion with a traceback.

Numeric cells are parsed as floats; everything else stays a string.

Usage: parse_tables.py <out.json> <name=seconds=status=capture.txt> ...
       (legacy three-field specs <name=seconds=capture.txt> imply status ok)
"""
import json
import os
import platform
import sys


def parse_cell(cell):
    try:
        return float(cell)
    except ValueError:
        return cell


def parse_capture(path):
    tables = []
    current = None
    with open(path, "r", errors="replace") as f:
        for line in f:
            line = line.rstrip("\n")
            if line.startswith("== ") and line.endswith(" =="):
                current = {"title": line[3:-3].strip(), "columns": [],
                           "rows": []}
                tables.append(current)
                continue
            cells = line.split()
            if current is None or not cells:
                continue
            if all(set(c) == {"-"} for c in cells):
                continue  # the dashed separator under the header
            if not current["columns"]:
                current["columns"] = cells
            else:
                current["rows"].append([parse_cell(c) for c in cells])
    return tables


def table_problem(tables):
    """A human-readable description of a truncated/partial table, or None."""
    if not tables:
        return "no tables found in output"
    for t in tables:
        if not t["columns"]:
            return "table %r has no header" % t["title"]
        if not t["rows"]:
            return "table %r has a header but no rows" % t["title"]
        for row in t["rows"]:
            if len(row) != len(t["columns"]):
                return ("table %r has a row with %d cells (header has %d)"
                        % (t["title"], len(row), len(t["columns"])))
    return None


def parse_backend_info(raw):
    """key=value lines from the backend_info helper -> dict (ints where
    possible)."""
    info = {}
    for line in (raw or "").splitlines():
        line = line.strip()
        if "=" not in line:
            continue
        key, _, value = line.partition("=")
        try:
            info[key] = int(value)
        except ValueError:
            info[key] = value
    return info


def cpu_features():
    """The SIMD-relevant CPUID flags of this host (best-effort)."""
    interesting = ("sse", "ssse", "avx", "fma", "amx")
    flags = set()
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("flags") or line.startswith("Features"):
                    for flag in line.split(":", 1)[1].split():
                        if flag.startswith(interesting):
                            flags.add(flag)
                    break
    except OSError:
        pass
    return sorted(flags)


def parse_spec(spec):
    """-> (name, seconds, status, path).  Raises ValueError on bad specs."""
    parts = spec.split("=", 3)
    if len(parts) == 3:  # legacy: name=seconds=path
        name, seconds, path = parts
        status = "ok"
    elif len(parts) == 4:
        name, seconds, status, path = parts
    else:
        raise ValueError("malformed spec %r" % spec)
    try:
        secs = float(seconds)
    except ValueError:
        secs = 0.0
    return name, secs, status, path


def main(argv):
    if len(argv) < 2:
        sys.stderr.write(__doc__)
        return 2
    out_path = argv[1]
    benches = []
    for spec in argv[2:]:
        try:
            name, seconds, status, path = parse_spec(spec)
        except ValueError as e:
            sys.stderr.write("parse_tables: %s\n" % e)
            return 2
        entry = {"name": name, "seconds": seconds, "tables": []}
        if status != "ok":
            entry["error"] = status
        else:
            try:
                entry["tables"] = parse_capture(path)
            except OSError as e:
                entry["error"] = "unreadable capture: %s" % e
            else:
                problem = table_problem(entry["tables"])
                if problem is not None:
                    entry["error"] = "partial output: %s" % problem
        if "error" in entry:
            sys.stderr.write("parse_tables: %s: %s\n"
                             % (name, entry["error"]))
        benches.append(entry)
    doc = {
        "schema": "tvs-bench-v1",
        "generated_by": "bench/run_all.sh",
        "host": platform.node(),
        "machine": platform.machine(),
        "mode": "full" if os.environ.get("TVS_BENCH_FULL") == "1"
                else "quick",
        # Kernel dispatch is runtime now; record what the run was pinned to
        # AND what actually resolved on this host (backend_info helper),
        # plus the host's SIMD CPUID flags.
        "force_backend": os.environ.get("TVS_FORCE_BACKEND") or "auto",
        "backend": parse_backend_info(
            os.environ.get("TVS_BENCH_BACKEND_INFO")),
        "cpu_features": cpu_features(),
        "benches": benches,
    }
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    errors = sum(1 for b in benches if "error" in b)
    print("wrote %s (%d benches, %d with errors)"
          % (out_path, len(benches), errors))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
