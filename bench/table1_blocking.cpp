// Table 1: problem and blocking sizes for every benchmark, plus — with
// TVS_BENCH_FULL=1 — a mini power-of-two block-size search for the 1D
// kernels ("we simply tested all blocking sizes that are the power of two
// ... and show the one producing the best performance").
#include <cstdio>
#include <string>

#include "bench_util/bench.hpp"
#include "tiling/diamond.hpp"
#include "tiling/parallelogram.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  b::print_title("Table 1  Problem and blocking sizes");
  b::print_header({"benchmark", "problem", "blocking"});
  b::print_row({"Heat-1D", "16000000x6000", "16384x128"});
  b::print_row({"Heat-2D", "8000^2x2000", "256^2x64"});
  b::print_row({"2D9P", "8000^2x2000", "256^2x64"});
  b::print_row({"Heat-3D", "800^3x200", "32^3x8"});
  b::print_row({"Life", "8000^2x2000", "256^2x32"});
  b::print_row({"GS-1D", "16000000x6000", "2048x64"});
  b::print_row({"GS-2D", "8000^2x2000", "128^2x32"});
  b::print_row({"GS-3D", "800^3x200", "32^3x32"});
  b::print_row({"LCS", "200000x200000", "4096x4096"});

  if (!b::full_mode()) {
    // To stderr: free-form notes inside the stdout stream would be parsed
    // as (malformed) table rows by bench/parse_tables.py.
    std::fprintf(stderr,
                 "(set TVS_BENCH_FULL=1 for the Heat-1D block-size search)\n");
    return 0;
  }

  const stencil::C1D3 c = stencil::heat1d(0.25);
  const int nx = 1 << 22;
  const long steps = 256;
  const double pts = static_cast<double>(nx) * steps;
  grid::PingPong<grid::Grid1D<double>> pp(nx);
  for (int x = 0; x <= nx + 1; ++x) pp.even().at(x) = 0.001 * (x % 101);
  tiling::fix_boundaries(pp);

  b::print_title("Heat-1D diamond block search (24 threads, Gstencils/s)");
  b::print_header({"WxH", "rate"});
  for (int w = 2048; w <= 65536; w *= 2)
    for (int h = 32; h <= 256; h *= 2) {
      if (2 * h + 40 > w) continue;
      tiling::Diamond1DOptions opt;
      opt.width = w;
      opt.height = h;
      const double r = b::measure_gstencils(pts, [&] {
        tiling::diamond_jacobi1d3_run(c, pp, steps, opt);
      });
      b::print_row({std::to_string(w) + "x" + std::to_string(h), b::fmt(r)});
    }
  return 0;
}
