// Figure 4c: Heat-2D (2D5P) sequential, size sweep 128..8192.
#include "baseline/autovec.hpp"
#include "baseline/spatial.hpp"
#include "bench_util/bench.hpp"
#include "solver/solver.hpp"
#include "stencil/reference2d.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const stencil::C2D5 c = stencil::heat2d(0.2);
  b::print_title("Fig 4c  Heat-2D sequential (Gstencils/s)");
  b::print_header({"size", "our", "auto", "scalar", "multiload"});
  const int hi = b::full_mode() ? 8192 : 2048;
  for (int n = 128; n <= hi; n *= 2) {
    const long steps = std::max<long>(8, (b::full_mode() ? 1L << 27 : 1L << 24) /
                                             (static_cast<long>(n) * n));
    const double pts = static_cast<double>(n) * n * static_cast<double>(steps);
    grid::Grid2D<double> u(n, n);
    for (int x = 0; x <= n + 1; ++x)
      for (int y = 0; y <= n + 1; ++y) u.at(x, y) = 0.001 * ((x * 31 + y) % 89);
    const solver::Solver solve(
        solver::problem_2d(solver::Family::kJacobi2D5, n, n, steps));
    const double r_our =
        b::measure_gstencils(pts, [&] { solve.run(c, u); });
    const double r_auto = b::measure_gstencils(
        pts, [&] { baseline::autovec_jacobi2d5_run(c, u, steps); });
    const double r_sc = b::measure_gstencils(
        pts, [&] { stencil::jacobi2d5_run(c, u, steps); });
    const double r_ml = b::measure_gstencils(
        pts, [&] { baseline::multiload_jacobi2d5_run(c, u, steps); });
    b::print_row({std::to_string(n), b::fmt(r_our), b::fmt(r_auto),
                  b::fmt(r_sc), b::fmt(r_ml)});
  }
  return 0;
}
