// Figure 4j: Life parallel scaling; diamond-on-x, Table 1: 256^2 x 32.
#include "baseline/autovec.hpp"
#include "bench_util/bench.hpp"
#include "common.hpp"
#include "tiling/diamond2d.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const int n = b::full_mode() ? 8000 : 2048;
  const long steps = b::full_mode() ? 512 : 128;
  const stencil::LifeRule rule{};
  const double pts = static_cast<double>(n) * n * static_cast<double>(steps);

  grid::PingPong<grid::Grid2D<std::int32_t>> pp(n, n);
  for (int x = 0; x <= n + 1; ++x)
    for (int y = 0; y <= n + 1; ++y)
      pp.even().at(x, y) = (x * 31 + y * 17) % 3 == 0;
  tiling::fix_boundaries2d(pp);
  grid::Grid2D<std::int32_t> ua(n, n);
  for (int x = 0; x <= n + 1; ++x)
    for (int y = 0; y <= n + 1; ++y) ua.at(x, y) = pp.even().at(x, y);

  tiling::Diamond2DOptions our;  // Table 1: 256^2 x 32
  our.width = 256;
  our.height = 32;
  tiling::Diamond2DOptions sc = our;
  sc.use_vector = false;

  benchx::par_figure(
      "Fig 4j  Life parallel, diamond 256x32 on x (Gstencils/s)",
      {{"our",
        [&](int) {
          return b::measure_gstencils(
              pts, [&] { tiling::diamond_life_run(rule, pp, steps, our); });
        }},
       {"auto",
        [&](int) {
          return b::measure_gstencils(
              pts, [&] { baseline::par_autovec_life_run(rule, ua, steps); });
        }},
       {"tiled-auto", [&](int) {
          return b::measure_gstencils(
              pts, [&] { tiling::diamond_life_run(rule, pp, steps, sc); });
        }}});
  return 0;
}
