// Figure 4j: Life parallel scaling; diamond-on-x, Table 1: 256^2 x 32.
#include "baseline/autovec.hpp"
#include "bench_util/bench.hpp"
#include "common.hpp"
#include "solver/solver.hpp"
#include "tiling/diamond2d.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const int n = b::full_mode() ? 8000 : 2048;
  const long steps = b::full_mode() ? 512 : 128;
  const stencil::LifeRule rule{};
  const double pts = static_cast<double>(n) * n * static_cast<double>(steps);

  grid::PingPong<grid::Grid2D<std::int32_t>> pp(n, n);
  for (int x = 0; x <= n + 1; ++x)
    for (int y = 0; y <= n + 1; ++y)
      pp.even().at(x, y) = (x * 31 + y * 17) % 3 == 0;
  tiling::fix_boundaries2d(pp);
  grid::Grid2D<std::int32_t> ua(n, n);
  for (int x = 0; x <= n + 1; ++x)
    for (int y = 0; y <= n + 1; ++y) ua.at(x, y) = pp.even().at(x, y);

  // "our" through the Solver facade, pinned to Table 1's 256^2 x 32.
  const solver::StencilProblem prob =
      solver::problem_2d(solver::Family::kLife, n, n, steps);
  solver::ExecutionPlan plan = solver::heuristic_plan(prob);
  plan.path = solver::Path::kTiledParallel;
  plan.tile_w = 256;
  plan.tile_h = 32;
  const solver::Solver solve(prob, plan);

  tiling::Diamond2DOptions sc;  // identical tiling, scalar tiles
  sc.width = plan.tile_w;
  sc.height = plan.tile_h;
  sc.use_vector = false;

  benchx::par_figure(
      "Fig 4j  Life parallel, diamond 256x32 on x (Gstencils/s)",
      {{"our",
        [&](int) {
          return b::measure_gstencils(pts, [&] { solve.run(rule, pp); });
        }},
       {"auto",
        [&](int) {
          return b::measure_gstencils(
              pts, [&] { baseline::par_autovec_life_run(rule, ua, steps); });
        }},
       {"tiled-auto", [&](int) {
          return b::measure_gstencils(
              pts, [&] { tiling::diamond_life_run(rule, pp, steps, sc); });
        }}});
  return 0;
}
