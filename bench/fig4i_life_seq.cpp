// Figure 4i: Game of Life (B2S23, int32 x 8 lanes) sequential, size sweep.
#include "baseline/autovec.hpp"
#include "baseline/spatial.hpp"
#include "bench_util/bench.hpp"
#include "solver/solver.hpp"
#include "stencil/life_ref.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const stencil::LifeRule rule{};  // B2S23
  b::print_title("Fig 4i  Life sequential (Gstencils/s)");
  b::print_header({"size", "our", "auto", "scalar", "multiload"});
  const int hi = b::full_mode() ? 8192 : 2048;
  for (int n = 128; n <= hi; n *= 2) {
    const long steps = std::max<long>(8, (b::full_mode() ? 1L << 27 : 1L << 24) /
                                             (static_cast<long>(n) * n));
    const double pts = static_cast<double>(n) * n * static_cast<double>(steps);
    grid::Grid2D<std::int32_t> u(n, n);
    for (int x = 0; x <= n + 1; ++x)
      for (int y = 0; y <= n + 1; ++y) u.at(x, y) = (x * 31 + y * 17) % 3 == 0;
    const solver::Solver solve(
        solver::problem_2d(solver::Family::kLife, n, n, steps));
    const double r_our =
        b::measure_gstencils(pts, [&] { solve.run(rule, u); });
    const double r_auto = b::measure_gstencils(
        pts, [&] { baseline::autovec_life_run(rule, u, steps); });
    const double r_sc =
        b::measure_gstencils(pts, [&] { stencil::life_run(rule, u, steps); });
    const double r_ml = b::measure_gstencils(
        pts, [&] { baseline::multiload_life_run(rule, u, steps); });
    b::print_row({std::to_string(n), b::fmt(r_our), b::fmt(r_auto),
                  b::fmt(r_sc), b::fmt(r_ml)});
  }
  return 0;
}
