// Figure 4e: Heat-3D (3D7P) sequential, size sweep 16..1024 (paper) /
// 16..192 (quick).
#include "baseline/autovec.hpp"
#include "baseline/spatial.hpp"
#include "bench_util/bench.hpp"
#include "solver/solver.hpp"
#include "stencil/reference3d.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const stencil::C3D7 c = stencil::heat3d(0.1);
  b::print_title("Fig 4e  Heat-3D sequential (Gstencils/s)");
  b::print_header({"size", "our", "auto", "scalar", "multiload"});
  const int hi = b::full_mode() ? 512 : 192;
  for (int n = 16; n <= hi; n *= 2) {
    const int nn = n == 192 ? 192 : n;  // keep the sweep pow2 + one odd size
    const long steps = std::max<long>(
        8, (b::full_mode() ? 1L << 27 : 1L << 24) /
               (static_cast<long>(nn) * nn * nn));
    const double pts =
        static_cast<double>(nn) * nn * nn * static_cast<double>(steps);
    grid::Grid3D<double> u(nn, nn, nn);
    for (int x = 0; x <= nn + 1; ++x)
      for (int y = 0; y <= nn + 1; ++y)
        for (int z = 0; z <= nn + 1; ++z)
          u.at(x, y, z) = 0.001 * ((x * 7 + y * 3 + z) % 89);
    const solver::Solver solve(
        solver::problem_3d(solver::Family::kJacobi3D7, nn, nn, nn, steps));
    const double r_our =
        b::measure_gstencils(pts, [&] { solve.run(c, u); });
    const double r_auto = b::measure_gstencils(
        pts, [&] { baseline::autovec_jacobi3d7_run(c, u, steps); });
    const double r_sc = b::measure_gstencils(
        pts, [&] { stencil::jacobi3d7_run(c, u, steps); });
    const double r_ml = b::measure_gstencils(
        pts, [&] { baseline::multiload_jacobi3d7_run(c, u, steps); });
    b::print_row({std::to_string(nn), b::fmt(r_our), b::fmt(r_auto),
                  b::fmt(r_sc), b::fmt(r_ml)});
  }
  return 0;
}
