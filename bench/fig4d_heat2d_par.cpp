// Figure 4d: Heat-2D parallel scaling; diamond-on-x blocking 256^2 x 64
// (Table 1; our height rounded to the lane count).
#include "baseline/autovec.hpp"
#include "bench_util/bench.hpp"
#include "common.hpp"
#include "solver/solver.hpp"
#include "tiling/diamond2d.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const int n = b::full_mode() ? 8000 : 2048;
  const long steps = b::full_mode() ? 512 : 128;
  const stencil::C2D5 c = stencil::heat2d(0.2);
  const double pts = static_cast<double>(n) * n * static_cast<double>(steps);

  grid::PingPong<grid::Grid2D<double>> pp(n, n);
  for (int x = 0; x <= n + 1; ++x)
    for (int y = 0; y <= n + 1; ++y)
      pp.even().at(x, y) = 0.001 * ((x * 31 + y) % 89);
  tiling::fix_boundaries2d(pp);
  grid::Grid2D<double> ua(n, n);
  for (int x = 0; x <= n + 1; ++x)
    for (int y = 0; y <= n + 1; ++y) ua.at(x, y) = pp.even().at(x, y);

  // "our" through the Solver facade, pinned to Table 1's 256^2 x 64.
  const solver::StencilProblem prob =
      solver::problem_2d(solver::Family::kJacobi2D5, n, n, steps);
  solver::ExecutionPlan plan = solver::heuristic_plan(prob);
  plan.path = solver::Path::kTiledParallel;
  plan.tile_w = 256;
  plan.tile_h = 64;
  const solver::Solver solve(prob, plan);

  tiling::Diamond2DOptions sc;  // identical tiling, scalar tiles
  sc.width = plan.tile_w;
  sc.height = plan.tile_h;
  sc.use_vector = false;

  benchx::par_figure(
      "Fig 4d  Heat-2D parallel, diamond 256x64 on x (Gstencils/s)",
      {{"our",
        [&](int) {
          return b::measure_gstencils(pts, [&] { solve.run(c, pp); });
        }},
       {"auto",
        [&](int) {
          return b::measure_gstencils(pts, [&] {
            baseline::par_autovec_jacobi2d5_run(c, ua, steps);
          });
        }},
       {"tiled-auto", [&](int) {
          return b::measure_gstencils(
              pts, [&] { tiling::diamond_jacobi2d5_run(c, pp, steps, sc); });
        }}});
  return 0;
}
