// Figure 5g: LCS sequential, size sweep 2^7..2^17 (square DP matrices);
// Gstencils/s counts DP cells per second.
#include <random>
#include <vector>

#include "bench_util/bench.hpp"
#include "solver/solver.hpp"
#include "stencil/lcs_ref.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  b::print_title("Fig 5g  LCS sequential (Gcells/s)");
  b::print_header({"size=2^x", "our", "scalar"});
  const int hi = b::full_mode() ? 17 : 14;
  std::mt19937_64 rng(5);
  for (int e = 7; e <= hi; ++e) {
    const int n = 1 << e;
    std::uniform_int_distribution<std::int32_t> d(0, 3);
    std::vector<std::int32_t> a(static_cast<std::size_t>(n)),
        bseq(static_cast<std::size_t>(n));
    for (auto& v : a) v = d(rng);
    for (auto& v : bseq) v = d(rng);
    const double pts = static_cast<double>(n) * static_cast<double>(n);
    volatile std::int32_t sink = 0;
    const solver::Solver solve(
        solver::problem_2d(solver::Family::kLcs, n, n, 0));
    const double r_our =
        b::measure_gstencils(pts, [&] { sink = solve.lcs(a, bseq); });
    const double r_sc =
        b::measure_gstencils(pts, [&] { sink = stencil::lcs_ref(a, bseq); });
    (void)sink;
    b::print_row({"2^" + std::to_string(e), b::fmt(r_our), b::fmt(r_sc)});
  }
  return 0;
}
